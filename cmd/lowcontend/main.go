// Command lowcontend regenerates the evaluation artifacts of Gibbons,
// Matias & Ramachandran, "Efficient Low-Contention Parallel Algorithms"
// on the QRQW PRAM simulator.
//
// Usage:
//
//	lowcontend [flags] list
//	lowcontend [flags] run <experiment> [run <experiment> ...]
//	lowcontend [flags] define <definition.json> [define <file> ...]
//	lowcontend [flags] profile <experiment> [profile <experiment> ...]
//	lowcontend [flags] sweep <experiment> [sweep flags]
//	lowcontend [flags] table1|table2|fig1|lowerbound|compaction|selftest|all
//
// Flags:
//
//	-seed N        base random seed (default 1)
//	-parallel N    concurrent experiment cells (0 = GOMAXPROCS)
//	-sizes a,b     comma-separated sizes overriding each experiment's defaults
//	-model M       charge every cell under contention model M (e.g. crcw)
//	               instead of the models the experiment pins
//	-json          emit machine-readable JSON (results + charged stats, plus
//	               session-pool hit/miss counters) instead of text
//	-results-only  with -json, emit the results array alone — no pool
//	               counters — so output is byte-comparable across -parallel
//	-check         verify each experiment's expected paper shape after running
//	-n N           problem size for selftest
//	-timing        print per-cell wall-clock and engine execution telemetry
//	               (gang dispatches, settlement routes, cursor claims/steals,
//	               cutoff retunes) to stderr after each run
//
// Execution tuning (host-side only — charged stats never depend on it):
//
//	-workers N        step-level host goroutines per machine (0 = auto:
//	                  1 when cells run concurrently, else GOMAXPROCS)
//	-serial-cutoff N  processor count below which a step runs serially
//	-min-chunk N      floor on the dynamically scheduled chunk size
//	-fixed-tuning     pin the cutoffs (disable adaptive retuning)
//
// Sweep flags (after `sweep <experiment>`; global -sizes/-seed/-parallel/
// -json provide the defaults):
//
//	-models a,b  comma-separated contention models; the first is the
//	             ratio baseline (default qrqw,crcw,erew; a global -model
//	             with no -models sweeps that single model)
//	-sizes a,b   sizes of the sweep's size axis
//	-seeds a,b   base seeds (the grid is models × sizes × seeds)
//	-seed N      shorthand for a single-entry -seeds
//	-parallel N  concurrent grid points (0 = GOMAXPROCS)
//	-json        emit the sweep result as JSON instead of text
//
// Experiments are declared in the internal/exp registry and executed by
// a concurrent runner over a pool of reusable sessions; charged stats
// and rendered artifacts are bit-identical at any -parallel value.
// define validates a declarative JSON experiment definition (the same
// document POST /v1/experiments accepts) with the exact same strict
// rules as the daemon, compiles it against the phase kernels, and runs
// it locally — its rendered artifact is byte-identical to the daemon's
// artifact for the same definition, sizes, and seed.
// profile runs an experiment with per-step tracing and renders each
// cell's contention profile — per-phase cost attribution, a kappa
// histogram, and hot cells — instead of the artifact (with -json, the
// profiles attach to each cell's result). sweep reruns one experiment
// across the cross-product of models × sizes × seeds and renders the
// comparative artifact: a model×size charged-time matrix with ratios
// against the baseline model, per-model kappa histograms, and the
// violation marks of models whose rules the algorithm's access pattern
// breaks. selftest exercises every core.Session entry point at size -n
// and prints the charged costs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"lowcontend/internal/core"
	"lowcontend/internal/exp"
	"lowcontend/internal/exp/dynamic"
	"lowcontend/internal/exp/spec"
	"lowcontend/internal/machine"
	"lowcontend/internal/perm"
	"lowcontend/internal/sweep"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Uint64("seed", 1, "base random seed")
	n := flag.Int("n", 512, "problem size for selftest")
	parallel := flag.Int("parallel", 0, "concurrent experiment cells (0 = GOMAXPROCS)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (with session-pool counters) instead of rendered tables")
	resultsOnly := flag.Bool("results-only", false, "with -json, emit the results array alone (no pool counters); byte-comparable across -parallel")
	sizesFlag := flag.String("sizes", "", "comma-separated sizes overriding each experiment's defaults")
	modelFlag := flag.String("model", "", "charge every cell under this contention model instead of the experiment's pinned models")
	check := flag.Bool("check", false, "verify each experiment's expected paper shape after running")
	workers := flag.Int("workers", 0, "step-level host goroutines per machine (0 = auto)")
	serialCutoff := flag.Int("serial-cutoff", 0, "processor count below which a step runs serially (0 = default)")
	minChunk := flag.Int("min-chunk", 0, "floor on the dynamically scheduled chunk size (0 = default)")
	fixedTuning := flag.Bool("fixed-tuning", false, "pin the execution cutoffs (disable adaptive retuning)")
	timing := flag.Bool("timing", false, "print per-cell wall-clock and engine execution telemetry to stderr after each run")
	flag.Parse()

	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lowcontend: %v\n", err)
		return 2
	}
	var modelOverride *machine.Model
	if *modelFlag != "" {
		m, ok := machine.ParseModel(*modelFlag)
		if !ok {
			fmt.Fprintf(os.Stderr, "lowcontend: unknown model %q\n", *modelFlag)
			return 2
		}
		modelOverride = &m
	}

	// One session pool serves every experiment of the invocation. When
	// cells run concurrently, each pooled machine is bounded to one
	// step-level worker so that cell parallelism is not multiplied by
	// step parallelism (charged stats are independent of both).
	par := *parallel
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	pool := core.NewSessionPool()
	if *workers > 0 {
		pool.Workers = *workers
	} else if par > 1 {
		pool.Workers = 1
	}
	// Execution tuning rides on every pooled lease. Host-side only:
	// charged stats and rendered artifacts are identical at any tuning.
	if *serialCutoff > 0 || *minChunk > 0 || *fixedTuning {
		pool.Tuning = &core.Tuning{
			SerialCutoff: *serialCutoff,
			MinChunk:     *minChunk,
			Fixed:        *fixedTuning,
		}
	}
	defer pool.Close()
	runner := &spec.Runner{Parallel: par, Pool: pool, Model: modelOverride}
	profRunner := &spec.Runner{Parallel: par, Pool: pool, Profile: true, Model: modelOverride}
	// -timing taps the runners' cell observer: wall-clock and engine
	// telemetry go to stderr, so text artifacts and -json documents stay
	// byte-identical with and without the flag.
	var sink *timingSink
	if *timing {
		sink = &timingSink{}
		runner.CellObserver = sink.observe
		profRunner.CellObserver = sink.observe
	}

	// Resolve the argument list into an ordered action plan first, so
	// argument errors abort before any work runs, then execute the plan
	// strictly in argument order.
	cmds := flag.Args()
	if len(cmds) == 0 {
		cmds = []string{"all"}
	}
	type action struct {
		name     string           // registry name, or the pseudo-action "list"/"selftest"
		profiled bool             // render the contention profile instead of the artifact
		dyn      *spec.Experiment // non-nil: compiled from a definition file, not the registry
	}
	var actions []action
	var sweepInv *sweepInvocation // non-nil once a sweep subcommand consumed the tail
	for i := 0; i < len(cmds); i++ {
		switch cmd := cmds[i]; cmd {
		case "list", "selftest":
			actions = append(actions, action{name: cmd})
		case "run", "profile":
			if i+1 >= len(cmds) {
				fmt.Fprintf(os.Stderr, "lowcontend: %s requires an experiment name (see lowcontend list)\n", cmd)
				return 2
			}
			i++
			if _, ok := exp.Find(cmds[i]); !ok {
				fmt.Fprintf(os.Stderr, "lowcontend: unknown experiment %q (see lowcontend list)\n", cmds[i])
				return 2
			}
			actions = append(actions, action{name: cmds[i], profiled: cmd == "profile"})
		case "define":
			// A definition file goes through the exact validation and
			// compilation pipeline the daemon uses, during planning, so a
			// malformed document aborts with the same message POST
			// /v1/experiments would have returned in its error envelope.
			if i+1 >= len(cmds) {
				fmt.Fprintf(os.Stderr, "lowcontend: define requires a definition file (JSON; see README)\n")
				return 2
			}
			i++
			raw, err := os.ReadFile(cmds[i])
			if err != nil {
				fmt.Fprintf(os.Stderr, "lowcontend: %v\n", err)
				return 2
			}
			def, derr := dynamic.Parse(raw, dynamic.DefaultLimits())
			if derr != nil {
				fmt.Fprintf(os.Stderr, "lowcontend: %s: %v\n", cmds[i], derr)
				return 2
			}
			e := dynamic.Compile(def)
			actions = append(actions, action{name: def.Name, dyn: &e})
		case "sweep":
			// Sweep owns the remainder of the command line: its own flags
			// (-models, -seeds, ...) follow the experiment name, so it is
			// necessarily the last subcommand of an invocation. Parsed —
			// and its plan validated — here, so a bad sweep invocation
			// aborts before any earlier action simulates.
			inv, code := parseSweep(cmds[i+1:], sizes, *seed, *parallel, *jsonOut, modelOverride)
			if code != 0 {
				return code
			}
			sweepInv = &inv
			i = len(cmds)
		case "table1", "table2", "fig1", "lowerbound", "compaction":
			actions = append(actions, action{name: cmd})
		case "all":
			for _, e := range exp.Registry() {
				actions = append(actions, action{name: e.Name})
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", cmd)
			return 2
		}
	}

	exit := 0
	var results []spec.Result
	for _, a := range actions {
		if a.dyn == nil {
			switch a.name {
			case "list":
				printList(sizes)
				continue
			case "selftest":
				if err := selftest(*n, *seed); err != nil {
					fmt.Fprintf(os.Stderr, "lowcontend: %v\n", err)
					exit = 1
				}
				continue
			}
		}
		e, _ := exp.Find(a.name)
		if a.dyn != nil {
			e = *a.dyn
		}
		sz := sizes
		if sz == nil {
			sz = e.DefaultSizes
		}
		r := runner
		if a.profiled {
			r = profRunner
		}
		res := r.Run(e, sz, *seed)
		if sink != nil {
			sink.flush(os.Stderr, res.Experiment)
		}
		for _, c := range res.Cells {
			if c.Err != nil {
				fmt.Fprintf(os.Stderr, "lowcontend: %s/%s: %v\n", res.Experiment, c.Cell, c.Err)
				exit = 1
			}
		}
		switch {
		case *jsonOut:
			results = append(results, res)
		case a.profiled:
			fmt.Println(spec.RenderProfiles(res))
		default:
			fmt.Println(e.Render(res))
		}
		if *check && e.Check != nil {
			if err := e.Check(res); err != nil {
				fmt.Fprintf(os.Stderr, "lowcontend: shape check failed: %v\n", err)
				exit = 1
			}
		}
	}
	if *jsonOut && results != nil {
		// The pool counters ride along so session reuse is visible
		// outside tests; they depend on -parallel (more concurrent
		// cells need more fresh sessions), so determinism diffs pass
		// -results-only, which drops them and leaves output
		// byte-comparable across -parallel values.
		var doc any = struct {
			Results []spec.Result  `json:"results"`
			Pool    core.PoolStats `json:"pool"`
		}{results, pool.Stats()}
		if *resultsOnly {
			doc = struct {
				Results []spec.Result `json:"results"`
			}{results}
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lowcontend: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
	}
	if sweepInv != nil {
		if code := runSweep(pool, *sweepInv); code != 0 {
			return code
		}
	}
	if sink != nil {
		sink.summary(os.Stderr, pool)
	}
	return exit
}

// timingSink collects per-cell timing spans when -timing is set; cells
// may finish concurrently, so appends are mutex-guarded and flush sorts
// rows back into declaration order.
type timingSink struct {
	mu   sync.Mutex
	rows []timingRow
}

type timingRow struct {
	cell          string
	idx           int
	wall, acquire time.Duration
	ex            machine.ExecStats
}

func (t *timingSink) observe(res spec.CellResult, ct spec.CellTiming) {
	t.mu.Lock()
	t.rows = append(t.rows, timingRow{res.Cell, res.Index, ct.Wall, ct.Acquire, res.Exec})
	t.mu.Unlock()
}

// flush prints and clears the rows collected since the previous run.
func (t *timingSink) flush(w io.Writer, name string) {
	t.mu.Lock()
	rows := t.rows
	t.rows = nil
	t.mu.Unlock()
	sort.Slice(rows, func(a, b int) bool { return rows[a].idx < rows[b].idx })
	fmt.Fprintf(w, "timing: %s\n", name)
	fmt.Fprintf(w, "  %-36s %12s %12s %6s %6s %6s %6s %7s %6s %5s\n",
		"cell", "wall", "acquire", "disp", "fused", "shard", "serial", "chunks", "steal", "cut+-")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-36s %12v %12v %6d %6d %6d %6d %7d %6d %2d/%-2d\n",
			r.cell, r.wall.Round(time.Microsecond), r.acquire.Round(time.Microsecond),
			r.ex.GangDispatches, r.ex.GangFusedSettles, r.ex.GangShardedSettles,
			r.ex.SerialSteps, r.ex.ChunksClaimed, r.ex.CursorSteals,
			r.ex.CutoffRaises, r.ex.CutoffLowers)
	}
}

// summary prints the invocation-wide pool and engine totals.
func (t *timingSink) summary(w io.Writer, pool *core.SessionPool) {
	ps, ex := pool.StatsLive()
	fmt.Fprintf(w, "timing: pool acquires=%d reuses=%d news=%d\n", ps.Acquires, ps.Reuses, ps.News)
	fmt.Fprintf(w, "timing: exec dispatches=%d fused=%d sharded=%d serial=%d chunks=%d steals=%d cutoff=+%d/-%d bulk=%d expanded=%d\n",
		ex.GangDispatches, ex.GangFusedSettles, ex.GangShardedSettles, ex.SerialSteps,
		ex.ChunksClaimed, ex.CursorSteals, ex.CutoffRaises, ex.CutoffLowers,
		ex.BulkDescriptors, ex.BulkExpanded)
}

// sweepInvocation is a fully validated sweep subcommand, ready to run.
type sweepInvocation struct {
	e       spec.Experiment
	plan    sweep.Plan
	jsonOut bool
}

// parseSweep resolves the sweep subcommand's tail — `<experiment>`
// followed by its own flag set (global -sizes/-seed/-parallel/-json
// supply the defaults; a global -model, with no -models, sweeps that
// single model) — into a normalized plan. It runs during argument
// planning, so every sweep error aborts before any action simulates.
func parseSweep(args []string, defSizes []int, defSeed uint64, defParallel int, defJSON bool, defModel *machine.Model) (sweepInvocation, int) {
	var inv sweepInvocation
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		fmt.Fprintf(os.Stderr, "lowcontend: sweep requires an experiment name (see lowcontend list)\n")
		return inv, 2
	}
	e, ok := exp.Find(args[0])
	if !ok {
		fmt.Fprintf(os.Stderr, "lowcontend: unknown experiment %q (see lowcontend list)\n", args[0])
		return inv, 2
	}
	inv.e = e
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	models := fs.String("models", "", "comma-separated contention models; the first is the ratio baseline (default qrqw,crcw,erew)")
	sizesFlag := fs.String("sizes", "", "comma-separated sizes of the sweep's size axis")
	seedsFlag := fs.String("seeds", "", "comma-separated base seeds (grid = models x sizes x seeds)")
	seedFlag := fs.Uint64("seed", defSeed, "single base seed (shorthand for -seeds)")
	par := fs.Int("parallel", defParallel, "concurrent grid points (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", defJSON, "emit the sweep result as JSON instead of text")
	if err := fs.Parse(args[1:]); err != nil {
		return inv, 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "lowcontend: sweep: unexpected argument %q\n", fs.Arg(0))
		return inv, 2
	}
	inv.jsonOut = *jsonOut

	plan := sweep.Plan{Experiment: e.Name, Parallel: *par}
	var err error
	switch {
	case *models != "":
		if plan.Models, err = sweep.ParseModels(*models); err != nil {
			fmt.Fprintf(os.Stderr, "lowcontend: sweep: %v\n", err)
			return inv, 2
		}
		if defModel != nil {
			fmt.Fprintf(os.Stderr, "lowcontend: sweep: pass either the global -model or sweep -models, not both\n")
			return inv, 2
		}
	case defModel != nil:
		// The global single-model override becomes a one-model sweep
		// rather than being silently ignored.
		plan.Models = []string{defModel.String()}
	}
	if *sizesFlag != "" {
		if plan.Sizes, err = parseSizes(*sizesFlag); err != nil {
			fmt.Fprintf(os.Stderr, "lowcontend: sweep: %v\n", err)
			return inv, 2
		}
	} else {
		plan.Sizes = defSizes
	}
	if *seedsFlag != "" {
		for _, part := range strings.Split(*seedsFlag, ",") {
			s, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lowcontend: sweep: bad -seeds entry %q\n", part)
				return inv, 2
			}
			plan.Seeds = append(plan.Seeds, s)
		}
	} else {
		plan.Seeds = []uint64{*seedFlag}
	}
	if inv.plan, err = sweep.Normalize(e, plan); err != nil {
		fmt.Fprintf(os.Stderr, "lowcontend: sweep: %v\n", err)
		return inv, 2
	}
	return inv, 0
}

// runSweep executes a parsed sweep over the invocation's shared session
// pool, so machines warmed by earlier actions are recycled by the grid.
// Model violations are comparative data — they render as violation
// marks in the artifact — so a completed sweep exits 0 even when some
// grid cells violated their model.
func runSweep(pool *core.SessionPool, inv sweepInvocation) int {
	// Concurrent grid points must not multiply step-level workers; the
	// shared pool is only un-bounded when the global -parallel was 1.
	if par := inv.plan.Parallel; (par > 1 || par <= 0 && runtime.GOMAXPROCS(0) > 1) && pool.Workers == 0 {
		pool.Workers = 1
	}
	res := (&sweep.Runner{Pool: pool}).Run(inv.e, inv.plan)
	if inv.jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lowcontend: %v\n", err)
			return 1
		}
		fmt.Println(string(out))
		return 0
	}
	fmt.Println(sweep.RenderText(res))
	return 0
}

// printList renders the registry through the same Describe path the
// daemon's GET /v1/experiments serves, so the cells column reflects a
// -sizes filter — including a 0 for experiments whose size grid the
// filter misses entirely, rather than hiding the row.
func printList(sizes []int) {
	fmt.Println("Experiments (lowcontend run <name>; profile <name> for contention profiles; sweep <name> for cross-model grids):")
	for _, in := range exp.DescribeUnder(exp.Builtins(), sizes) {
		extra := ""
		if in.DefaultSizes != nil {
			parts := make([]string, len(in.DefaultSizes))
			for i, n := range in.DefaultSizes {
				parts[i] = strconv.Itoa(n)
			}
			extra = "  [sizes: " + strings.Join(parts, ",") + "]"
		}
		fmt.Printf("  %-12s cells=%-3d %s%s\n", in.Name, in.Cells, in.Description, extra)
	}
	fmt.Println()
	fmt.Println("Serve these over HTTP: lowcontendd starts a daemon (POST /v1/runs; see README),")
	fmt.Println("and define your own: POST /v1/experiments, or lowcontend define <file.json> locally.")
}

func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -sizes entry %q", part)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// selftest runs every core.Session entry point at size n on one reused
// session, printing each phase's charged cost. It doubles as the smoke
// path: any facade or engine regression fails it.
func selftest(n int, seed uint64) error {
	if n < 1 {
		return fmt.Errorf("selftest: -n must be at least 1 (got %d)", n)
	}
	s := core.NewSession(core.QRQW, 1<<16, core.WithSeed(seed))
	defer s.Close()

	p, err := s.RandomPermutation(n)
	if err != nil {
		return err
	}
	if !perm.IsPermutation(p) {
		return fmt.Errorf("selftest: invalid permutation")
	}
	fmt.Printf("random permutation    n=%-6d %v\n", n, s.Stats())

	s.Reset()
	cp, err := s.RandomCyclicPermutation(n)
	if err != nil {
		return err
	}
	if !perm.IsCyclic(cp) {
		return fmt.Errorf("selftest: permutation not cyclic")
	}
	fmt.Printf("cyclic permutation    n=%-6d %v\n", n, s.Stats())

	s.Reset()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % max(1, n/8)
	}
	if _, err := s.MultipleCompaction(labels, max(1, n/8)); err != nil {
		return err
	}
	fmt.Printf("multiple compaction   n=%-6d %v\n", n, s.Stats())

	s.Reset()
	keys := make([]core.Word, n)
	for i := range keys {
		keys[i] = core.Word((i*2654435761 + 1) % (1 << 30))
	}
	if err := s.SortUniform(append([]core.Word(nil), keys...), 1<<30); err != nil {
		return err
	}
	fmt.Printf("distributive sort     n=%-6d %v\n", n, s.Stats())

	s.Reset()
	tb, err := s.BuildHashTable(keys)
	if err != nil {
		return err
	}
	found, err := tb.Lookup(keys[:min(n, 16)])
	if err != nil {
		return err
	}
	for _, ok := range found {
		if !ok {
			return fmt.Errorf("selftest: hash table lost a key")
		}
	}
	fmt.Printf("hashing build+lookup  n=%-6d %v\n", n, s.Stats())

	s.Reset()
	counts := make([]int, n)
	counts[0] = 32
	if _, err := s.BalanceLoads(counts); err != nil {
		return err
	}
	fmt.Printf("load balancing        n=%-6d %v\n", n, s.Stats())
	fmt.Println("selftest ok")
	return nil
}
