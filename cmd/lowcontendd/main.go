// Command lowcontendd serves the experiment registry as a long-lived
// JSON HTTP daemon — the service counterpart of the lowcontend CLI.
//
// Usage:
//
//	lowcontendd [flags]
//
// Flags:
//
//	-addr host:port   listen address (default from LOWCONTEND_ADDR, then
//	                  PORT, then :8080)
//	-workers N        run worker goroutines (default 2)
//	-sweep-workers N  sweep worker goroutines (default 1; a sweep is a
//	                  whole grid of runs)
//	-queue N          bounded job queue depth, per queue (default 32)
//	-parallel N       per-job cell/grid parallelism when a request omits it (default 1)
//	-max-size N       largest accepted problem size per request (default 1<<20)
//	-drain D          graceful-shutdown drain timeout (default 30s)
//	-debug-addr A     when set, serve net/http/pprof and the flight-recorder
//	                  dump (/debug/flight) on a second listener at A; the
//	                  service address never exposes them
//	-slo SPEC         repeatable per-endpoint SLO objective, e.g.
//	                  "POST /v1/runs,p=0.99,latency=250ms,errors=0.01";
//	                  served at GET /v1/slo, exported as burn-rate gauges,
//	                  and arming the latency-breach incident trigger
//	-flight N         flight-recorder ring size in events (default 256)
//	-incident-burst N 503 rejections within 10s that constitute a
//	                  backpressure incident (default 10)
//	-contention-sample N  profile every Nth run job into the rolling
//	                  contention view at GET /v1/contention (default 0 =
//	                  off; sampled runs bypass the artifact cache)
//
// Every request is traced: an X-Request-ID header is accepted (or
// minted), echoed on the response, threaded into the job it submits,
// and logged in the structured request log on stderr. GET /metrics
// serves flat JSON counters by default and the Prometheus text
// exposition — latency histograms included — under ?format=prometheus;
// GET /v1/runs/{id}/timeline (sweeps alike) serves the job's recorded
// lifecycle timeline.
//
// Endpoints: GET /v1/experiments (full descriptors: id, origin, cell
// counts, models, phase names), POST /v1/experiments (store a dynamic
// definition; 201 with its content id, idempotent re-POST 200),
// GET /v1/experiments/{id} (stored canonical document),
// DELETE /v1/experiments/{id} (builtins are 403), GET /v1/runs
// (listing, ?state= filter), POST /v1/runs (builtin name or dynamic
// content id/name, with optional "model" override and "profile": true),
// GET /v1/runs/{id}, GET /v1/runs/{id}/artifact,
// GET /v1/runs/{id}/profile, GET /v1/sweeps (listing),
// POST /v1/sweeps ({experiment, models?, sizes?, seeds?} cross-model
// scenario grids), GET /v1/sweeps/{id}, GET /v1/sweeps/{id}/artifact,
// GET /healthz, GET /metrics. Every error is the structured envelope
// {"error":{"code","message","path"}}. Identical submissions are
// served from the artifact cache — determinism makes cached artifacts
// byte-exact (dynamic experiments are cache-keyed by content id) —
// and SIGINT or SIGTERM drains running jobs before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lowcontend/internal/obs"
	"lowcontend/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", defaultAddr(), "listen address (env LOWCONTEND_ADDR or PORT override the default)")
	workers := flag.Int("workers", 2, "run worker goroutines")
	sweepWorkers := flag.Int("sweep-workers", 1, "sweep worker goroutines")
	queue := flag.Int("queue", 32, "bounded job queue depth, per queue")
	parallel := flag.Int("parallel", 1, "per-job cell/grid parallelism when a request omits it")
	maxSize := flag.Int("max-size", serve.DefaultLimits().MaxSize, "largest accepted problem size per request")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof and /debug/flight on this second listener (empty = disabled)")
	flightEvents := flag.Int("flight", obs.DefaultFlightEvents, "flight-recorder ring size in events")
	incidentBurst := flag.Int("incident-burst", 10, "503 rejections within the burst window that constitute an incident")
	contentionSample := flag.Int("contention-sample", 0, "profile every Nth run job into /v1/contention (0 = off)")
	var slos []obs.Objective
	flag.Func("slo", `per-endpoint SLO objective, repeatable (e.g. "POST /v1/runs,p=0.99,latency=250ms,errors=0.01")`,
		func(v string) error {
			o, err := obs.ParseObjective(v)
			if err != nil {
				return err
			}
			slos = append(slos, o)
			return nil
		})
	flag.Parse()

	// serve.Config gives negative Workers a tests-only meaning (zero
	// workers: jobs queue forever), so an operator typo must not reach
	// it — refuse non-positive tuning values outright.
	if *workers < 1 || *sweepWorkers < 1 || *queue < 1 || *parallel < 1 || *maxSize < 1 || *drain <= 0 {
		fmt.Fprintf(os.Stderr, "lowcontendd: -workers, -sweep-workers, -queue, -parallel, -max-size must be >= 1 and -drain positive\n")
		return 2
	}
	if *flightEvents < 1 || *incidentBurst < 1 || *contentionSample < 0 {
		fmt.Fprintf(os.Stderr, "lowcontendd: -flight and -incident-burst must be >= 1 and -contention-sample >= 0\n")
		return 2
	}

	srv := serve.New(serve.Config{
		Workers:           *workers,
		SweepWorkers:      *sweepWorkers,
		QueueDepth:        *queue,
		Parallel:          *parallel,
		Limits:            serve.Limits{MaxSize: *maxSize},
		Logger:            slog.New(slog.NewTextHandler(os.Stderr, nil)),
		FlightEvents:      *flightEvents,
		BackpressureBurst: *incidentBurst,
		ContentionSample:  *contentionSample,
		SLOs:              slos,
	})

	// Listen explicitly (rather than ListenAndServe) so -addr :0 binds
	// an ephemeral port and the printed address tells callers — smoke
	// tests, scripts — where the daemon actually lives.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lowcontendd: %v\n", err)
		return 1
	}
	fmt.Printf("lowcontendd listening on %s\n", ln.Addr())

	// Connection timeouts bound hostile clients: slowloris headers,
	// trickled bodies, and parked keep-alives must not pin goroutines
	// forever (or eat the whole -drain budget at shutdown).
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	// The profiling surface is opt-in and lives on its own listener so
	// operators can bind it to loopback while the service address is
	// public. Best-effort: the daemon outlives its debug listener.
	var ds *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lowcontendd: debug listener: %v\n", err)
			return 1
		}
		fmt.Printf("lowcontendd debug (pprof) on %s\n", dln.Addr())
		ds = &http.Server{Handler: srv.DebugHandler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := ds.Serve(dln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "lowcontendd: debug server: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "lowcontendd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	stop()

	fmt.Println("lowcontendd draining")
	// Each phase gets its own deadline: a slow client holding the HTTP
	// listener open must not eat the job drain's budget.
	hctx, hcancel := context.WithTimeout(context.Background(), *drain)
	if err := hs.Shutdown(hctx); err != nil {
		fmt.Fprintf(os.Stderr, "lowcontendd: http shutdown: %v\n", err)
	}
	if ds != nil {
		ds.Shutdown(hctx)
	}
	hcancel()
	jctx, jcancel := context.WithTimeout(context.Background(), *drain)
	defer jcancel()
	if err := srv.Shutdown(jctx); err != nil {
		fmt.Fprintf(os.Stderr, "lowcontendd: %v\n", err)
		return 1
	}
	fmt.Println("lowcontendd stopped")
	return 0
}

// defaultAddr resolves the flag default: LOWCONTEND_ADDR wins, then
// PORT (Cloud-Run style, port only), then :8080.
func defaultAddr() string {
	if a := os.Getenv("LOWCONTEND_ADDR"); a != "" {
		return a
	}
	if p := os.Getenv("PORT"); p != "" {
		return ":" + p
	}
	return ":8080"
}
