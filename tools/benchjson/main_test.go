package main

import (
	"bufio"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const input = `goos: linux
goarch: amd64
pkg: lowcontend
cpu: Example CPU @ 2.00GHz
BenchmarkExperiments/table2/dart-throwing_for_QRQW/16384-4         	       3	  28312345 ns/op	         5.0 max-contention	    392352 pram-ops/op	       633 time-units/op
BenchmarkTraceOverhead/untraced-4 	       3	   6700000 ns/op
PASS
ok  	lowcontend	12.3s
`
	doc, err := parse(bufio.NewScanner(strings.NewReader(input)))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Env["goos"] != "linux" || doc.Env["cpu"] != "Example CPU @ 2.00GHz" {
		t.Errorf("env = %v", doc.Env)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkExperiments/table2/dart-throwing_for_QRQW/16384-4" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Iterations != 3 || b.NsPerOp != 28312345 {
		t.Errorf("iterations/ns = %d/%v", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["time-units/op"] != 633 || b.Metrics["max-contention"] != 5.0 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[1].Metrics != nil {
		t.Errorf("metric-free benchmark should carry no metrics map: %v", doc.Benchmarks[1].Metrics)
	}

	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkBad-4 notanumber 5 ns/op\n"))); err == nil {
		t.Error("malformed iteration count accepted")
	}
}
