// Command benchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document (written to stdout) for the CI
// benchmark-baseline artifact. It keeps the exact benchstat-comparable
// benchmark names (including the -GOMAXPROCS suffix), the iteration
// counts, ns/op, and every custom metric the benchmarks report
// (time-units/op, pram-ops/op, max-contention, allocs, ...), so a
// future regression gate can diff two of these documents — or replay
// them through benchstat via the retained raw lines — without
// reparsing free-form logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 . | go run ./tools/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one measured benchmark line. Repeated -count runs of one
// benchmark produce repeated entries, exactly as benchstat expects.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
	Raw        string             `json:"raw"`
}

// Doc is the whole converted run: the benchmark environment header
// lines go test prints (goos, goarch, pkg, cpu) plus every benchmark.
type Doc struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	doc, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (Doc, error) {
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	doc := Doc{Env: map[string]string{}}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				return doc, err
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		default:
			// Environment headers have the form "key: value"; anything
			// else (PASS, ok, test logs) is noise.
			if k, v, ok := strings.Cut(line, ": "); ok && !strings.Contains(k, " ") {
				switch k {
				case "goos", "goarch", "pkg", "cpu":
					doc.Env[k] = strings.TrimSpace(v)
				}
			}
		}
	}
	return doc, sc.Err()
}

// parseBench parses one result line:
//
//	BenchmarkName-8   3   123456 ns/op   17 max-contention   42 pram-ops/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBench(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, fmt.Errorf("short benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count in %q: %v", line, err)
	}
	b := Benchmark{Name: f[0], Iterations: iters, Raw: line, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad metric value in %q: %v", line, err)
		}
		if unit := f[i+1]; unit == "ns/op" {
			b.NsPerOp = val
		} else {
			b.Metrics[unit] = val
		}
	}
	if len(b.Metrics) == 0 {
		b.Metrics = nil
	}
	return b, nil
}
