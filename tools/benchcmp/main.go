// Command benchcmp is the thresholded benchmark-regression gate: it
// compares two benchjson documents (the committed baseline and a fresh
// run) and fails when wall-clock regresses beyond the threshold or when
// the charged PRAM metrics drift at all.
//
// Per benchmark name it compares
//
//   - mean ns/op: the new mean may exceed the baseline mean by at most
//     -max-regress (default 0.15, i.e. +15%). Wall-clock is
//     machine-dependent, so this check assumes both documents were
//     measured on comparable hardware; -metrics-only skips it.
//   - the charged metrics time-units/op and pram-ops/op (and
//     max-contention when both sides report it): these are pure
//     functions of (benchmark, seed schedule), so the sorted multiset
//     of values across repeated -count runs must match exactly. Any
//     drift means the simulation charges differently and fails the
//     gate regardless of speed. Exactness is only meaningful when both
//     documents were generated with the same -benchtime/-count
//     schedule (the per-iteration seed is the iteration index).
//
// A benchmark present in the baseline but missing from the new run
// fails the gate (coverage must not silently shrink); a new benchmark
// absent from the baseline is reported but passes.
//
// Usage:
//
//	go run ./tools/benchcmp -baseline BENCH_5.json -new BENCH_6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"slices"
	"sort"
)

// benchmark mirrors tools/benchjson's output entry.
type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type doc struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// exactMetrics are the charged simulation metrics that must not drift.
var exactMetrics = []string{"time-units/op", "pram-ops/op", "max-contention"}

// group is one benchmark name's repeated runs.
type group struct {
	ns      []float64
	metrics map[string][]float64
}

func load(path string) (map[string]*group, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var d doc
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(d.Benchmarks) == 0 {
		return nil, nil, fmt.Errorf("%s: no benchmarks", path)
	}
	byName := map[string]*group{}
	var order []string
	for _, b := range d.Benchmarks {
		g := byName[b.Name]
		if g == nil {
			g = &group{metrics: map[string][]float64{}}
			byName[b.Name] = g
			order = append(order, b.Name)
		}
		g.ns = append(g.ns, b.NsPerOp)
		for k, v := range b.Metrics {
			g.metrics[k] = append(g.metrics[k], v)
		}
	}
	for _, g := range byName {
		for _, vs := range g.metrics {
			sort.Float64s(vs)
		}
	}
	return byName, order, nil
}

func mean(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

func main() {
	basePath := flag.String("baseline", "", "committed baseline benchjson document")
	newPath := flag.String("new", "", "freshly measured benchjson document")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum tolerated mean ns/op regression (0.15 = +15%)")
	metricsOnly := flag.Bool("metrics-only", false, "skip the ns/op threshold (cross-machine comparisons); charged metrics must still match exactly")
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcmp: -baseline and -new are required")
		os.Exit(2)
	}
	base, order, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	fresh, freshOrder, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Printf("FAIL: "+format+"\n", args...)
	}
	for _, name := range order {
		b := base[name]
		n, ok := fresh[name]
		if !ok {
			fail("%s: present in baseline, missing from new run", name)
			continue
		}
		bMean, nMean := mean(b.ns), mean(n.ns)
		ratio := nMean / bMean
		if !*metricsOnly && ratio > 1+*maxRegress {
			fail("%s: ns/op %.0f -> %.0f (%.2fx, limit %.2fx)",
				name, bMean, nMean, ratio, 1+*maxRegress)
		} else {
			fmt.Printf("ok:   %s: ns/op %.0f -> %.0f (%.2fx)\n", name, bMean, nMean, ratio)
		}
		for _, m := range exactMetrics {
			bv, nv := b.metrics[m], n.metrics[m]
			if len(bv) == 0 && len(nv) == 0 {
				continue
			}
			if !slices.Equal(bv, nv) {
				fail("%s: %s drifted: baseline %v, new %v", name, m, bv, nv)
			}
		}
	}
	for _, name := range freshOrder {
		if _, ok := base[name]; !ok {
			fmt.Printf("note: %s: new benchmark, no baseline\n", name)
		}
	}
	if failed {
		fmt.Println("benchcmp: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchcmp: PASS")
}
