// Command loadgen drives a live lowcontendd daemon with a weighted
// request mix and reports client-side latency percentiles and
// throughput, then cross-checks its own observations against the
// daemon's Prometheus histograms.
//
// Usage:
//
//	go run ./tools/loadgen -addr http://127.0.0.1:8080 [flags]
//
// Flags:
//
//	-addr URL       daemon base URL (default http://127.0.0.1:8080)
//	-duration D     how long to generate load (default 5s)
//	-concurrency N  concurrent client goroutines (default 4)
//	-mix a,b,c      weights for cached-run : uncached-run : status
//	                requests (default 6,2,2)
//	-experiment E   registry experiment submitted by run requests
//	                (default fig1, the cheapest cell)
//	-json           emit the run summary as one JSON document on stdout
//	                instead of the human-readable report
//	-slo SPEC       repeatable client-side SLO assertion over a request
//	                kind, e.g. "cached,p=0.99,latency=250ms,errors=0.01"
//	                (kinds: cached, uncached, status). When any -slo is
//	                given, loadgen also fetches the daemon's GET /v1/slo
//	                and requires every daemon objective to hold.
//
// The generator first primes one cache key (a POST that simulates once
// and lands in the artifact cache), then issues the weighted mix:
// "cached" resubmits that exact key (served at zero simulation cost),
// "uncached" submits a fresh seed each time (real simulation work), and
// "status" polls GET endpoints. Every response's X-Request-ID echo is
// required, making loadgen an end-to-end check of the tracing
// middleware as well. At the end it scrapes GET /metrics?format=
// prometheus and compares the daemon's recorded HTTP request count
// against its own completed-request count: the daemon must have seen at
// least as many requests as loadgen completed, tying the client-side
// view to the server-side histograms.
//
// Exit status: 0 on success, 1 when no request completed, when any
// response lacked the X-Request-ID echo, when the cross-check fails, or
// when any -slo assertion (client-side or daemon-side) misses.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lowcontend/internal/obs"
)

func main() {
	os.Exit(run())
}

type result struct {
	kind    string
	latency time.Duration
	status  int
	noEcho  bool // response lacked the X-Request-ID echo
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "concurrent client goroutines")
	mix := flag.String("mix", "6,2,2", "weights for cached:uncached:status requests")
	experiment := flag.String("experiment", "fig1", "registry experiment submitted by run requests")
	jsonOut := flag.Bool("json", false, "emit the run summary as one JSON document on stdout")
	var slos []obs.Objective
	flag.Func("slo", `client-side SLO assertion over a request kind, repeatable (e.g. "cached,p=0.99,latency=250ms")`,
		func(v string) error {
			o, err := obs.ParseObjective(v)
			if err != nil {
				return err
			}
			switch o.Endpoint {
			case "cached", "uncached", "status":
			default:
				return fmt.Errorf("unknown request kind %q (want cached, uncached, or status)", o.Endpoint)
			}
			slos = append(slos, o)
			return nil
		})
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	if *concurrency < 1 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -concurrency must be >= 1 and -duration positive")
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	// Prime one cache key so the "cached" mix component measures the
	// daemon's cache path rather than repeated simulation.
	primed := fmt.Sprintf(`{"experiment":%q,"seed":1}`, *experiment)
	if _, _, err := post(client, base+"/v1/runs", primed); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: priming submission failed: %v\n", err)
		return 1
	}

	var (
		mu      sync.Mutex
		results []result
		seq     atomic.Uint64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Deterministic per-worker schedule over the weighted mix:
			// each worker walks the expanded weight table round-robin
			// from its own offset, so the mix holds at any concurrency.
			table := expand(weights)
			i := worker
			for time.Now().Before(deadline) {
				kind := table[i%len(table)]
				i++
				r := issue(client, base, kind, *experiment, &seq)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no request completed")
		return 1
	}
	exit := 0
	byKind := map[string][]time.Duration{}
	errsByKind := map[string]int{}
	var completed int
	for _, r := range results {
		if r.status == 0 {
			continue
		}
		completed++
		byKind[r.kind] = append(byKind[r.kind], r.latency)
		if r.status >= 500 {
			errsByKind[r.kind]++
		}
		if r.noEcho {
			fmt.Fprintf(os.Stderr, "loadgen: %s response missing X-Request-ID echo\n", r.kind)
			exit = 1
		}
	}
	if completed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no request completed")
		return 1
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
		sort.Slice(byKind[k], func(a, b int) bool { return byKind[k][a] < byKind[k][b] })
	}
	sort.Strings(kinds)

	sum := summary{
		Requests:       completed,
		DurationSecs:   duration.Seconds(),
		ThroughputRPS:  float64(completed) / duration.Seconds(),
		Concurrency:    *concurrency,
		Kinds:          map[string]kindSummary{},
		SLOs:           []sloResult{},
		DaemonSLOHolds: true,
	}
	for _, k := range kinds {
		lat := byKind[k]
		sum.Kinds[k] = kindSummary{
			Count:      len(lat),
			Errors:     errsByKind[k],
			P50Seconds: pct(lat, 50).Seconds(),
			P99Seconds: pct(lat, 99).Seconds(),
			MaxSeconds: lat[len(lat)-1].Seconds(),
		}
	}

	// Cross-check: the daemon's own histogram must account for at least
	// every request this client completed (it also sees the priming
	// request and anything else hitting the daemon, hence "at least").
	seen, err := scrapeRequestCount(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: prometheus cross-check: %v\n", err)
		return 1
	}
	sum.DaemonRequests = seen
	if seen < uint64(completed) {
		fmt.Fprintf(os.Stderr, "loadgen: daemon histograms recorded %d requests < client's %d\n", seen, completed)
		exit = 1
	}

	// Client-side SLO assertions over this run's own observations, plus
	// the daemon-side cross-check: every objective the daemon itself is
	// configured with must currently hold.
	for _, o := range slos {
		r := evalSLO(o, byKind[o.Endpoint], errsByKind[o.Endpoint])
		sum.SLOs = append(sum.SLOs, r)
		if !r.OK {
			fmt.Fprintf(os.Stderr, "loadgen: SLO miss on %q: observed p%g=%.4fs error_rate=%.4f (objective latency=%gs errors=%g)\n",
				o.Endpoint, o.Quantile*100, r.ObservedSeconds, r.ErrorRate, o.LatencySeconds, o.MaxErrorRate)
			exit = 1
		}
	}
	if len(slos) > 0 {
		ok, err := daemonSLOHolds(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: daemon SLO cross-check: %v\n", err)
			return 1
		}
		sum.DaemonSLOHolds = ok
		if !ok {
			fmt.Fprintln(os.Stderr, "loadgen: daemon /v1/slo reports a broken objective")
			exit = 1
		}
	}
	sum.OK = exit == 0

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(sum)
		return exit
	}
	fmt.Printf("loadgen: %d requests in %v (%.1f req/s, concurrency %d)\n",
		completed, duration.Round(time.Millisecond), sum.ThroughputRPS, *concurrency)
	for _, k := range kinds {
		lat := byKind[k]
		fmt.Printf("  %-9s n=%-6d errs=%-4d p50=%-10v p99=%-10v max=%v\n",
			k, len(lat), errsByKind[k], pct(lat, 50), pct(lat, 99), lat[len(lat)-1])
	}
	fmt.Printf("  daemon http_request_duration count=%d (client completed %d)\n", seen, completed)
	for _, r := range sum.SLOs {
		verdict := "ok"
		if !r.OK {
			verdict = "MISS"
		}
		fmt.Printf("  slo %-9s p%g observed=%.4fs error_rate=%.4f — %s\n",
			r.Kind, r.Quantile*100, r.ObservedSeconds, r.ErrorRate, verdict)
	}
	if len(slos) > 0 {
		fmt.Printf("  daemon /v1/slo holds: %v\n", sum.DaemonSLOHolds)
	}
	return exit
}

// summary is the -json document.
type summary struct {
	Requests       int                    `json:"requests"`
	DurationSecs   float64                `json:"duration_seconds"`
	ThroughputRPS  float64                `json:"throughput_rps"`
	Concurrency    int                    `json:"concurrency"`
	Kinds          map[string]kindSummary `json:"kinds"`
	DaemonRequests uint64                 `json:"daemon_request_count"`
	SLOs           []sloResult            `json:"slos"`
	DaemonSLOHolds bool                   `json:"daemon_slo_holds"`
	OK             bool                   `json:"ok"`
}

type kindSummary struct {
	Count      int     `json:"count"`
	Errors     int     `json:"errors"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
}

// sloResult is one client-side assertion's outcome.
type sloResult struct {
	Kind            string  `json:"kind"`
	Quantile        float64 `json:"quantile"`
	LatencySeconds  float64 `json:"latency_seconds,omitempty"`
	MaxErrorRate    float64 `json:"max_error_rate,omitempty"`
	ObservedSeconds float64 `json:"observed_seconds"`
	ErrorRate       float64 `json:"error_rate"`
	Count           int     `json:"count"`
	OK              bool    `json:"ok"`
}

// evalSLO checks one objective against the run's latency observations
// for its request kind. A kind with no traffic passes vacuously.
func evalSLO(o obs.Objective, lat []time.Duration, errs int) sloResult {
	r := sloResult{
		Kind:           o.Endpoint,
		Quantile:       o.Quantile,
		LatencySeconds: o.LatencySeconds,
		MaxErrorRate:   o.MaxErrorRate,
		Count:          len(lat),
		OK:             true,
	}
	if len(lat) == 0 {
		return r
	}
	idx := int(float64(len(lat))*o.Quantile+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lat) {
		idx = len(lat) - 1
	}
	r.ObservedSeconds = lat[idx].Seconds()
	r.ErrorRate = float64(errs) / float64(len(lat))
	if o.LatencySeconds > 0 && r.ObservedSeconds > o.LatencySeconds {
		r.OK = false
	}
	if o.MaxErrorRate > 0 && r.ErrorRate > o.MaxErrorRate {
		r.OK = false
	}
	return r
}

// daemonSLOHolds fetches GET /v1/slo and reports whether every
// objective the daemon is configured with currently holds.
func daemonSLOHolds(client *http.Client, base string) (bool, error) {
	resp, err := client.Get(base + "/v1/slo")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("GET /v1/slo: HTTP %d", resp.StatusCode)
	}
	var rep obs.SLOReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return false, fmt.Errorf("GET /v1/slo: %v", err)
	}
	for _, o := range rep.Objectives {
		if !o.OK {
			return false, nil
		}
	}
	return true, nil
}

// issue performs one request of the given kind and times it.
func issue(client *http.Client, base, kind, experiment string, seq *atomic.Uint64) result {
	start := time.Now()
	var (
		status int
		echo   string
	)
	switch kind {
	case "cached":
		body := fmt.Sprintf(`{"experiment":%q,"seed":1}`, experiment)
		status, echo, _ = post(client, base+"/v1/runs", body)
	case "uncached":
		// Unique seeds defeat both the artifact cache and coalescing,
		// so every one of these submissions simulates.
		seed := 1_000_000 + seq.Add(1)
		body := fmt.Sprintf(`{"experiment":%q,"seed":%d}`, experiment, seed)
		status, echo, _ = post(client, base+"/v1/runs", body)
	default: // "status"
		resp, err := client.Get(base + "/v1/runs")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
			echo = resp.Header.Get("X-Request-ID")
		}
	}
	return result{kind: kind, latency: time.Since(start), status: status, noEcho: status != 0 && echo == ""}
}

// post submits one JSON body and returns (status, request-id echo).
func post(client *http.Client, url, body string) (int, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 400 {
		return resp.StatusCode, "", fmt.Errorf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	return resp.StatusCode, resp.Header.Get("X-Request-ID"), nil
}

// scrapeRequestCount sums lowcontend_http_request_duration_seconds_count
// across every label combination of the daemon's Prometheus exposition.
func scrapeRequestCount(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/metrics?format=prometheus")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var total uint64
	var found bool
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "lowcontend_http_request_duration_seconds_count") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad count line %q: %v", line, err)
		}
		total += v
		found = true
	}
	if !found {
		return 0, fmt.Errorf("no lowcontend_http_request_duration_seconds_count series in the scrape")
	}
	return total, nil
}

// parseMix resolves -mix into named weights.
func parseMix(s string) (map[string]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -mix %q: want three comma-separated weights (cached,uncached,status)", s)
	}
	names := []string{"cached", "uncached", "status"}
	out := make(map[string]int, 3)
	sum := 0
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", p)
		}
		out[names[i]] = w
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("bad -mix %q: all weights zero", s)
	}
	return out, nil
}

// expand turns weights into a round-robin schedule table.
func expand(weights map[string]int) []string {
	var table []string
	for _, k := range []string{"cached", "uncached", "status"} {
		for i := 0; i < weights[k]; i++ {
			table = append(table, k)
		}
	}
	return table
}

// pct reads the p-th percentile from an ascending latency slice.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
