// Command loadgen drives a live lowcontendd daemon with a weighted
// request mix and reports client-side latency percentiles and
// throughput, then cross-checks its own observations against the
// daemon's Prometheus histograms.
//
// Usage:
//
//	go run ./tools/loadgen -addr http://127.0.0.1:8080 [flags]
//
// Flags:
//
//	-addr URL       daemon base URL (default http://127.0.0.1:8080)
//	-duration D     how long to generate load (default 5s)
//	-concurrency N  concurrent client goroutines (default 4)
//	-mix a,b,c      weights for cached-run : uncached-run : status
//	                requests (default 6,2,2)
//	-experiment E   registry experiment submitted by run requests
//	                (default fig1, the cheapest cell)
//
// The generator first primes one cache key (a POST that simulates once
// and lands in the artifact cache), then issues the weighted mix:
// "cached" resubmits that exact key (served at zero simulation cost),
// "uncached" submits a fresh seed each time (real simulation work), and
// "status" polls GET endpoints. Every response's X-Request-ID echo is
// required, making loadgen an end-to-end check of the tracing
// middleware as well. At the end it scrapes GET /metrics?format=
// prometheus and compares the daemon's recorded HTTP request count
// against its own completed-request count: the daemon must have seen at
// least as many requests as loadgen completed, tying the client-side
// view to the server-side histograms.
//
// Exit status: 0 on success, 1 when no request completed, when any
// response lacked the X-Request-ID echo, or when the cross-check fails.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

func main() {
	os.Exit(run())
}

type result struct {
	kind    string
	latency time.Duration
	status  int
	noEcho  bool // response lacked the X-Request-ID echo
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "concurrent client goroutines")
	mix := flag.String("mix", "6,2,2", "weights for cached:uncached:status requests")
	experiment := flag.String("experiment", "fig1", "registry experiment submitted by run requests")
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}
	if *concurrency < 1 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -concurrency must be >= 1 and -duration positive")
		return 2
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}

	// Prime one cache key so the "cached" mix component measures the
	// daemon's cache path rather than repeated simulation.
	primed := fmt.Sprintf(`{"experiment":%q,"seed":1}`, *experiment)
	if _, _, err := post(client, base+"/v1/runs", primed); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: priming submission failed: %v\n", err)
		return 1
	}

	var (
		mu      sync.Mutex
		results []result
		seq     atomic.Uint64
	)
	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Deterministic per-worker schedule over the weighted mix:
			// each worker walks the expanded weight table round-robin
			// from its own offset, so the mix holds at any concurrency.
			table := expand(weights)
			i := worker
			for time.Now().Before(deadline) {
				kind := table[i%len(table)]
				i++
				r := issue(client, base, kind, *experiment, &seq)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no request completed")
		return 1
	}
	exit := 0
	byKind := map[string][]time.Duration{}
	var completed int
	for _, r := range results {
		if r.status == 0 {
			continue
		}
		completed++
		byKind[r.kind] = append(byKind[r.kind], r.latency)
		if r.noEcho {
			fmt.Fprintf(os.Stderr, "loadgen: %s response missing X-Request-ID echo\n", r.kind)
			exit = 1
		}
	}
	if completed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no request completed")
		return 1
	}

	fmt.Printf("loadgen: %d requests in %v (%.1f req/s, concurrency %d)\n",
		completed, duration.Round(time.Millisecond), float64(completed)/duration.Seconds(), *concurrency)
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		lat := byKind[k]
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		fmt.Printf("  %-9s n=%-6d p50=%-10v p99=%-10v max=%v\n",
			k, len(lat), pct(lat, 50), pct(lat, 99), lat[len(lat)-1])
	}

	// Cross-check: the daemon's own histogram must account for at least
	// every request this client completed (it also sees the priming
	// request and anything else hitting the daemon, hence "at least").
	seen, err := scrapeRequestCount(client, base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: prometheus cross-check: %v\n", err)
		return 1
	}
	fmt.Printf("  daemon http_request_duration count=%d (client completed %d)\n", seen, completed)
	if seen < uint64(completed) {
		fmt.Fprintf(os.Stderr, "loadgen: daemon histograms recorded %d requests < client's %d\n", seen, completed)
		exit = 1
	}
	return exit
}

// issue performs one request of the given kind and times it.
func issue(client *http.Client, base, kind, experiment string, seq *atomic.Uint64) result {
	start := time.Now()
	var (
		status int
		echo   string
	)
	switch kind {
	case "cached":
		body := fmt.Sprintf(`{"experiment":%q,"seed":1}`, experiment)
		status, echo, _ = post(client, base+"/v1/runs", body)
	case "uncached":
		// Unique seeds defeat both the artifact cache and coalescing,
		// so every one of these submissions simulates.
		seed := 1_000_000 + seq.Add(1)
		body := fmt.Sprintf(`{"experiment":%q,"seed":%d}`, experiment, seed)
		status, echo, _ = post(client, base+"/v1/runs", body)
	default: // "status"
		resp, err := client.Get(base + "/v1/runs")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
			echo = resp.Header.Get("X-Request-ID")
		}
	}
	return result{kind: kind, latency: time.Since(start), status: status, noEcho: status != 0 && echo == ""}
}

// post submits one JSON body and returns (status, request-id echo).
func post(client *http.Client, url, body string) (int, string, error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode >= 400 {
		return resp.StatusCode, "", fmt.Errorf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	return resp.StatusCode, resp.Header.Get("X-Request-ID"), nil
}

// scrapeRequestCount sums lowcontend_http_request_duration_seconds_count
// across every label combination of the daemon's Prometheus exposition.
func scrapeRequestCount(client *http.Client, base string) (uint64, error) {
	resp, err := client.Get(base + "/metrics?format=prometheus")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	var total uint64
	var found bool
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, "lowcontend_http_request_duration_seconds_count") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad count line %q: %v", line, err)
		}
		total += v
		found = true
	}
	if !found {
		return 0, fmt.Errorf("no lowcontend_http_request_duration_seconds_count series in the scrape")
	}
	return total, nil
}

// parseMix resolves -mix into named weights.
func parseMix(s string) (map[string]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -mix %q: want three comma-separated weights (cached,uncached,status)", s)
	}
	names := []string{"cached", "uncached", "status"}
	out := make(map[string]int, 3)
	sum := 0
	for i, p := range parts {
		w, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", p)
		}
		out[names[i]] = w
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("bad -mix %q: all weights zero", s)
	}
	return out, nil
}

// expand turns weights into a round-robin schedule table.
func expand(weights map[string]int) []string {
	var table []string
	for _, k := range []string{"cached", "uncached", "status"} {
		for i := 0; i < weights[k]; i++ {
			table = append(table, k)
		}
	}
	return table
}

// pct reads the p-th percentile from an ascending latency slice.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
